"""Myers' sequential transitive reduction (the linear-time baseline).

Myers 2005 ("The fragment assembly string graph") reduces the overlap graph
by iterating over each vertex ``v``, examining vertices up to two edges away,
and marking transitive edges — inherently sequential (paper Section III).
This is both the paper's algorithmic reference point and our ground-truth
oracle: on identical inputs diBELLA's matrix formulation must remove an
equivalent edge set (tests assert this on clean data).

The implementation follows Myers' vertex-marking scheme adapted to the
bidirected end-attachment encoding: for ``v``, its out-neighbours are marked
*in-play*; for each out-edge ``v→w`` (in ascending suffix order) every
``w→x`` continuation that forms a valid walk and lands on an in-play ``x``
with matching end attachments marks ``v→x`` transitive — provided the
two-hop suffix is within the tolerance bound.
"""

from __future__ import annotations

import numpy as np

from ..core.string_graph import StringGraph

__all__ = ["myers_transitive_reduction"]


def myers_transitive_reduction(graph: StringGraph, fuzz: int = 150,
                               use_rowmax: bool = True) -> StringGraph:
    """Sequential transitive reduction of a bidirected string graph.

    Parameters
    ----------
    graph:
        Symmetric overlap graph (both directed entries per overlap).
    fuzz:
        Endpoint tolerance added to the bound.
    use_rowmax:
        When true, a two-hop path marks ``v→x`` if its suffix sum is at most
        ``rowmax(v) + fuzz`` — the bound diBELLA's Algorithm 2 uses, so the
        two implementations are directly comparable.  When false, uses
        Myers' original per-edge bound ``suffix(v→x) + fuzz``.

    Returns
    -------
    StringGraph
        The reduced graph.  Like Algorithm 2, the procedure iterates to a
        fixed point (multi-hop redundancies need several passes).
    """
    g = graph
    while True:
        marked = _one_pass(g, fuzz, use_rowmax)
        if not marked:
            return g
        g = g.subgraph_without(marked)


def _one_pass(g: StringGraph, fuzz: int, use_rowmax: bool
              ) -> set[tuple[int, int]]:
    n_edges = g.n_edges
    out_of: dict[int, list[int]] = {}
    for e in range(n_edges):
        out_of.setdefault(int(g.src[e]), []).append(e)
    # Sort each adjacency by ascending suffix (Myers processes shortest
    # extensions first so longer direct edges are seen as reducible).
    for v in out_of:
        out_of[v].sort(key=lambda e: int(g.suffix[e]))

    marked: set[tuple[int, int]] = set()
    for v, edges in out_of.items():
        # In-play table: direct neighbour -> its direct edge index.
        inplay: dict[int, int] = {int(g.dst[e]): e for e in edges}
        rowmax = int(g.suffix[edges[-1]]) if edges else 0
        for e1 in edges:
            w = int(g.dst[e1])
            for e2 in out_of.get(w, ()):
                x = int(g.dst[e2])
                if x == v or x not in inplay:
                    continue
                if g.end_dst[e1] == g.end_src[e2]:
                    continue  # invalid walk through w
                d = inplay[x]
                if g.end_src[d] != g.end_src[e1]:
                    continue
                if g.end_dst[d] != g.end_dst[e2]:
                    continue
                bound = (rowmax if use_rowmax else int(g.suffix[d])) + fuzz
                if int(g.suffix[e1]) + int(g.suffix[e2]) <= bound:
                    marked.add((v, x))
    return marked
