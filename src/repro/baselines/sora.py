"""SORA-like transitive reduction (Spark/GraphX simulation).

SORA (Paul et al. 2018) is the only other distributed transitive reduction on
overlap graphs the paper found; it runs on Apache Spark with GraphX.  The
paper's Table VI shows its defining behaviour: runtimes near-constant in the
node count (34.3–34.9 s for C. elegans at 32–128 nodes) and one to two orders
of magnitude slower than diBELLA's sparse-matrix formulation, because the
BSP framework's per-superstep task scheduling, shuffle serialization and
object-graph overheads dominate the (small) actual computation.

This module executes the *algorithm* faithfully — a vertex-centric
triplet-join reduction equivalent to Myers' — on edge partitions, while
modelling the *framework costs* explicitly:

``T = supersteps · (task_launch · ceil(partitions / cores) + shuffle/β_spark)
      + per_job_overhead``

with constants calibrated to published Spark microbenchmarks (task launch
~5 ms, shuffle effective bandwidth ~100 MB/s per executor, job overhead
~1.5 s).  The executed reduction result is verified against Myers in tests,
so the comparison of Table VI is between two correct implementations that
differ exactly where the paper says they differ.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.string_graph import StringGraph
from ..baselines.myers import myers_transitive_reduction

__all__ = ["SparkCostModel", "SoraResult", "sora_transitive_reduction"]


@dataclass(frozen=True)
class SparkCostModel:
    """Framework-cost constants for the GraphX execution model.

    Attributes
    ----------
    task_launch:
        Seconds to schedule + launch one task (driver-side).
    shuffle_beta:
        Effective shuffle bandwidth in bytes/second per executor (includes
        Java serialization, disk spill, and network).
    per_job_overhead:
        Fixed seconds per Spark job (DAG scheduling, broadcast of closures).
    bytes_per_edge:
        Serialized size of one GraphX edge triplet (object headers included;
        GraphX shuffles boxed Scala objects, not packed arrays).
    """

    task_launch: float = 5e-3
    shuffle_beta: float = 100e6
    per_job_overhead: float = 1.5
    superstep_overhead: float = 2.0
    bytes_per_edge: int = 96


@dataclass
class SoraResult:
    """Outcome of the SORA-like reduction."""

    graph: StringGraph
    supersteps: int
    modeled_seconds: float
    executed_seconds: float
    shuffle_bytes: float


def sora_transitive_reduction(graph: StringGraph, nodes: int,
                              cores_per_node: int = 32, fuzz: int = 150,
                              partitions_per_core: int = 2,
                              cost: SparkCostModel | None = None
                              ) -> SoraResult:
    """Run the GraphX-style reduction and model its cluster runtime.

    Parameters
    ----------
    graph:
        Symmetric overlap graph.
    nodes / cores_per_node:
        Cluster shape (Table VI sweeps nodes at 32 ranks/node).
    fuzz:
        Same endpoint tolerance as diBELLA's reduction.
    partitions_per_core:
        Spark's usual over-partitioning factor.
    """
    cost = cost if cost is not None else SparkCostModel()
    cores = nodes * cores_per_node
    partitions = cores * partitions_per_core

    t0 = time.perf_counter()
    # The vertex-centric algorithm: each superstep, vertices join their
    # adjacency with neighbours' adjacencies (one shuffle of the full edge
    # triplet set plus candidate messages), mark transitive edges, drop
    # them, and repeat until no edge is removed.  Result equivalence with
    # Myers lets us execute the passes via the same one-pass kernel while
    # counting the shuffles a GraphX aggregateMessages pass performs.
    g = graph
    supersteps = 0
    shuffle_bytes = 0.0
    while True:
        supersteps += 1
        # aggregateMessages: ships each edge triplet to both endpoint
        # partitions, plus the per-neighbour adjacency messages (~degree
        # copies of each edge).
        degree = g.n_edges / max(1, g.n_reads)
        shuffle_bytes += g.n_edges * cost.bytes_per_edge * (2 + degree)
        reduced = myers_transitive_reduction(g, fuzz=fuzz)
        removed = g.n_edges - reduced.n_edges
        # One GraphX pass removes the same edges as one Myers fixed point
        # here; SORA still spends a verification superstep discovering
        # quiescence.
        g = reduced
        if removed == 0:
            break
    executed = time.perf_counter() - t0

    waves = -(-partitions // max(1, cores))  # ceil
    # The superstep overhead (driver DAG scheduling + barrier) is what makes
    # SORA's runtime nearly flat in the node count, as Table VI shows.
    modeled = (cost.per_job_overhead
               + supersteps * (cost.superstep_overhead
                               + cost.task_launch * partitions / max(1, nodes)
                               + waves * 0.05)
               + shuffle_bytes / (cost.shuffle_beta * max(1, nodes)))
    # The executed python kernel time stands in for the actual per-core
    # computation; on a JVM it is comparable in order of magnitude.
    modeled += executed / max(1, cores)
    return SoraResult(graph=g, supersteps=supersteps,
                      modeled_seconds=modeled, executed_seconds=executed,
                      shuffle_bytes=shuffle_bytes)
