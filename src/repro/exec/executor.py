"""Shared-memory executors with deterministic ordered reduction.

The mpisim layer models *what a distributed run would cost*; this module
makes the simulated ranks' local work *actually run in parallel* on the
host's cores.  Every hot loop in the pipeline — SUMMA block multiplies,
candidate-pair x-drop alignments, per-rank k-mer hashing — is a list of
independent tasks, and an :class:`Executor` maps a function over such a
list:

* :class:`SerialExecutor` — the deterministic reference (and default): a
  plain in-order loop with zero overhead.
* :class:`ThreadExecutor` — a ``concurrent.futures`` thread pool; wins when
  the tasks spend their time in numpy/scipy kernels that release the GIL.
* :class:`ProcessExecutor` — a fork-safe process pool for pure-Python-heavy
  tasks (the x-drop loop); chunks are pickled to workers, results shipped
  back.

All three share one contract, which is what makes ``--workers`` a pure
performance axis:

1. tasks are batched into weight-balanced **contiguous** chunks
   (:func:`~repro.exec.partition.weighted_chunks`), and
2. per-task results are concatenated back in task-list order — an ordered,
   deterministic reduction.

Because each task is independent and the reduction never reorders, the
result list is byte-identical across executors and worker counts; only
wall-clock changes.  Per-task CPU time is measured inside the worker and
returned alongside each result so callers can keep charging compute to the
owning simulated rank (:class:`~repro.mpisim.tracker.StageTimer`'s
critical-path max semantics survive parallel execution).

Failures are survived, not propagated wholesale: a worker exception or a
broken pool loses *chunks*, and the pool executors re-run exactly the lost
chunks (respawning a broken pool) under a bounded
:class:`~repro.resilience.retry.RetryPolicy`, degrading
process → thread → serial when a pool keeps breaking.  Because the
ordered reduction never moves a chunk's slot and every task is a pure
function, a run that survived any number of injected or real faults
returns byte-identical results.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import time
from concurrent.futures import (BrokenExecutor, Future, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from typing import Any, Callable

from ..resilience.faults import check_fault, trip
from ..resilience.retry import DEFAULT_RETRY, RetryPolicy
from .partition import weighted_chunks

__all__ = [
    "Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor",
    "get_executor", "register_executor", "available_executors",
    "resolve_workers", "SERIAL", "DEFAULT_EXECUTOR", "WORKERS_ENV",
    "EXECUTOR_ENV", "CHUNK_FAULT_SITE",
]

log = logging.getLogger("repro.resilience")

#: Fault-injection site consulted once per chunk submission (the verdict
#: is decided in the parent and shipped with the chunk, so firing order
#: is deterministic even under process pools).
CHUNK_FAULT_SITE = "exec.chunk"

#: Name resolved by ``get_executor("auto", workers)`` when ``workers > 1``.
PARALLEL_DEFAULT = "process"

#: Name resolved by ``get_executor(None)`` (before env overrides).
DEFAULT_EXECUTOR = "auto"

#: Environment variables consulted by :func:`resolve_workers` /
#: :func:`get_executor` when the caller passes ``None``.
WORKERS_ENV = "REPRO_WORKERS"
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Chunks submitted per worker — enough slack for uneven chunks to
#: rebalance across the pool without drowning in submission overhead
#: (each chunk re-pickles the shared context for a process pool, so this
#: also bounds how many times a big context crosses the pipe per call).
_CHUNKS_PER_WORKER = 2

TaskFn = Callable[[Any, Any], Any]


def _run_chunk(fn: TaskFn, context: Any, tasks: list,
               inject: str | None = None) -> list[tuple[Any, float]]:
    """Run one chunk in-order, timing each task (executes in the worker).

    Tasks are timed with per-thread CPU time, not wall-clock: under a
    thread pool a wall-clock span would include every co-scheduled
    thread's execution (GIL hand-offs), inflating the compute charged to
    each simulated rank roughly workers-fold.  CPU time attributes to a
    rank only the cycles its own task burned, so
    :class:`~repro.mpisim.tracker.StageTimer` breakdowns stay comparable
    across executors (for the compute-bound kernels here, serial CPU time
    ≈ serial wall time).

    ``inject`` is a fault verdict decided in the parent
    (:func:`~repro.resilience.faults.check_fault`); it fires before any
    task runs, so an injected loss never leaks partial work.
    """
    if inject is not None:
        trip(inject, CHUNK_FAULT_SITE)
    out = []
    for task in tasks:
        t0 = time.thread_time()
        res = fn(context, task)
        out.append((res, time.thread_time() - t0))
    return out


def _run_chunk_pickled(fn: TaskFn, ctx_bytes: bytes, tasks: list,
                       inject: str | None = None) -> list[tuple[Any, float]]:
    """Process-pool chunk entry: the shared context arrives pre-pickled.

    The parent serializes the context once per ``run_timed`` call and
    submits the same bytes to every chunk, so a large shared context (the
    read set, a k-mer table) costs one ``pickle.dumps`` instead of one per
    chunk.  Unpickling happens here in the worker — for a store-backed
    ReadSet that is just reopening the memmaps by path.
    """
    return _run_chunk(fn, pickle.loads(ctx_bytes), tasks, inject)


class Executor:
    """Maps ``fn(context, task)`` over task lists with ordered reduction.

    ``context`` is shared, read-only state delivered once per chunk (for
    process pools it is pickled per chunk, not per task — pass the big
    immutable stuff like the read set here).  ``weights`` are per-task cost
    estimates (nonzero counts, read lengths) driving chunk balance; results
    never depend on them.

    ``retry`` bounds how failed chunks are re-run (see
    :class:`~repro.resilience.retry.RetryPolicy`); ``recovery`` accumulates
    one record per retry, pool respawn, or tier downgrade the executor
    performed — empty on the fault-free path.
    """

    #: Registry name; set by subclasses.
    name: str = "abstract"

    def __init__(self, workers: int = 1,
                 retry: RetryPolicy | None = None) -> None:
        self.workers = max(1, int(workers))
        self.retry = retry if retry is not None else DEFAULT_RETRY
        self.recovery: list[dict] = []

    def _note(self, event: str, **fields) -> None:
        self.recovery.append({"event": event, "executor": self.name,
                              **fields})

    def _backoff(self, attempt: int, tier: str, error: str) -> None:
        """Record (and optionally sleep) the scheduled backoff delay."""
        delay = self.retry.delay(attempt)
        self._note("retry", tier=tier, attempt=attempt, delay=delay,
                   error=error)
        log.info("repro.exec %s: attempt %d failed at tier %s (%s); "
                 "retrying after %.3fs%s", self.name, attempt, tier, error,
                 delay, "" if self.retry.sleep else " (recorded, not slept)")
        if self.retry.sleep and delay > 0:
            time.sleep(delay)

    def _run_serial(self, fn: TaskFn, tasks: list, context: Any
                    ) -> tuple[list, list[float]]:
        """In-process execution with bounded retry of the (single) chunk."""
        if not tasks:
            return [], []
        attempt = 1
        while True:
            try:
                pairs = _run_chunk(fn, context, tasks,
                                   check_fault(CHUNK_FAULT_SITE))
                return [r for r, _ in pairs], [s for _, s in pairs]
            except Exception as exc:
                if attempt >= self.retry.max_attempts:
                    raise
                self._backoff(attempt, "serial", repr(exc))
                attempt += 1

    def run_timed(self, fn: TaskFn, tasks: list, *, context: Any = None,
                  weights=None) -> tuple[list, list[float]]:
        """Ordered results plus per-task wall seconds (measured in-worker)."""
        raise NotImplementedError

    def run(self, fn: TaskFn, tasks: list, *, context: Any = None,
            weights=None) -> list:
        """Ordered results (timing discarded)."""
        return self.run_timed(fn, tasks, context=context, weights=weights)[0]

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release pool resources (idempotent; safe on broken pools)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(Executor):
    """In-order single-thread execution — the determinism reference."""

    name = "serial"

    def run_timed(self, fn, tasks, *, context=None, weights=None):
        return self._run_serial(fn, list(tasks), context)


class _PoolExecutor(Executor):
    """Shared chunk-submit / ordered-gather / recovery logic for pools.

    Chunks are re-run under :attr:`retry` when a worker raises or the pool
    breaks; a broken pool is discarded and respawned before the re-run.
    When a tier exhausts its attempt budget the executor *degrades* along
    :attr:`_TIERS` (process → thread → serial) with a logged downgrade —
    the last-resort serial tier runs chunks in the parent, where real task
    exceptions finally propagate.  Results stay byte-identical because
    only whole chunks are re-run and each lands back in its own slot of
    the ordered reduction.
    """

    #: Degradation chain; index 0 is the native tier.
    _TIERS: tuple[str, ...] = ()

    def __init__(self, workers: int = 1,
                 retry: RetryPolicy | None = None) -> None:
        super().__init__(workers, retry)
        self._pools: dict[str, Any] = {}
        #: Sticky degradation floor: once pool breakage forces a tier
        #: down, later calls start there instead of re-breaking.
        self._tier_floor = 0

    def _make_pool(self, tier: str):
        if tier == "thread":
            return ThreadPoolExecutor(max_workers=self.workers,
                                      thread_name_prefix="repro-exec")
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None)
        return ProcessPoolExecutor(max_workers=self.workers, mp_context=ctx)

    def _pool(self, tier: str):
        pool = self._pools.get(tier)
        if pool is None:
            pool = self._pools[tier] = self._make_pool(tier)
        return pool

    def _discard_pool(self, tier: str) -> None:
        """Drop (and best-effort shut down) a pool — broken or not."""
        pool = self._pools.pop(tier, None)
        if pool is not None:
            try:
                pool.shutdown(wait=True, cancel_futures=True)
            except Exception:  # pragma: no cover - defensive
                pass

    def close(self) -> None:
        for tier in list(self._pools):
            self._discard_pool(tier)

    def run_timed(self, fn, tasks, *, context=None, weights=None):
        tasks = list(tasks)
        if not tasks:
            return [], []
        if self.workers <= 1 or len(tasks) <= 1:
            return self._run_serial(fn, tasks, context)
        if weights is None:
            weights = [1.0] * len(tasks)
        ranges = weighted_chunks(weights, self.workers * _CHUNKS_PER_WORKER)
        chunk_out: list = [None] * len(ranges)
        pending = list(range(len(ranges)))
        tier_i = self._tier_floor
        attempt = 1
        while pending:
            tier = self._TIERS[tier_i]
            if tier == "serial":
                # Last resort: run the lost chunks in the parent, without
                # injection (recovery must terminate) and without retry
                # (a failure here is a real, deterministic task error).
                for ci in pending:
                    lo, hi = ranges[ci]
                    chunk_out[ci] = _run_chunk(fn, context, tasks[lo:hi])
                pending = []
                break
            failed: list[int] = []
            broken = False
            last_exc: BaseException | None = None
            # For the process tier, serialize the shared context once and
            # ship the same bytes with every chunk (a big context would
            # otherwise be re-pickled per chunk by submit()).  Anything
            # unpicklable falls back to plain submission so the pool's own
            # error path (and the degradation ladder) still applies.
            ctx_payload: bytes | None = None
            if tier == "process" and context is not None:
                try:
                    ctx_payload = pickle.dumps(
                        context, protocol=pickle.HIGHEST_PROTOCOL)
                except Exception:
                    ctx_payload = None
            try:
                pool = self._pool(tier)
                futures: dict[int, Future] = {}
                for ci in pending:
                    lo, hi = ranges[ci]
                    if ctx_payload is not None:
                        futures[ci] = pool.submit(
                            _run_chunk_pickled, fn, ctx_payload,
                            tasks[lo:hi], check_fault(CHUNK_FAULT_SITE))
                    else:
                        futures[ci] = pool.submit(
                            _run_chunk, fn, context, tasks[lo:hi],
                            check_fault(CHUNK_FAULT_SITE))
            except BrokenExecutor as exc:
                broken, failed, last_exc = True, list(pending), exc
            else:
                for ci in pending:
                    try:
                        chunk_out[ci] = futures[ci].result()
                    except BrokenExecutor as exc:
                        broken = True
                        failed.append(ci)
                        last_exc = exc
                    except Exception as exc:
                        failed.append(ci)
                        last_exc = exc
            if broken:
                # A dead worker poisons the whole pool: discard it so the
                # next attempt submits to a freshly spawned one.
                self._discard_pool(tier)
                self._note("respawn", tier=tier, chunks=len(failed))
                log.warning("repro.exec %s: %s pool broke (%r); respawning "
                            "(%d chunks lost)", self.name, tier, last_exc,
                            len(failed))
            if not failed:
                break
            pending = failed
            if attempt >= self.retry.max_attempts:
                if tier_i + 1 < len(self._TIERS):
                    tier_i += 1
                    attempt = 1
                    if broken:
                        self._tier_floor = max(self._tier_floor, tier_i)
                    self._note("downgrade", tier=self._TIERS[tier_i],
                               from_tier=tier, sticky=broken)
                    log.warning(
                        "repro.exec %s: tier %s exhausted %d attempts; "
                        "degrading to %s%s", self.name, tier,
                        self.retry.max_attempts, self._TIERS[tier_i],
                        " (sticky: pool kept breaking)" if broken else "")
                else:  # pragma: no cover - serial tier never exhausts
                    raise last_exc
            else:
                self._backoff(attempt, tier, repr(last_exc))
                attempt += 1
        results: list = []
        seconds: list[float] = []
        # Gather in chunk order = task order: the ordered reduction.
        for pairs in chunk_out:
            for res, sec in pairs:
                results.append(res)
                seconds.append(sec)
        return results, seconds


class ThreadExecutor(_PoolExecutor):
    """Thread-pool executor; shines on GIL-releasing numpy/scipy kernels."""

    name = "thread"
    _TIERS = ("thread", "serial")


class ProcessExecutor(_PoolExecutor):
    """Process-pool executor for pure-Python-bound task loops.

    Uses the ``fork`` start method where the platform offers it (cheap
    worker startup, parent globals inherited) and falls back to ``spawn``
    elsewhere; either way task functions and payloads must be picklable —
    which is why the pipeline's task functions are module-level and carry
    their state via ``context``.  The pool is created lazily on first use
    and reused across calls, so per-stage dispatch costs a round of chunk
    pickles, not a pool spin-up.  A chunk lost to a dying worker
    (``BrokenProcessPool``) is re-run on a respawned pool; persistent
    breakage degrades to a thread pool and finally to in-process serial
    execution.
    """

    name = "process"
    _TIERS = ("process", "thread", "serial")


#: Shared zero-state serial instance — the default for library call sites.
SERIAL = SerialExecutor()

_REGISTRY: dict[str, type[Executor]] = {}


def register_executor(name: str, cls: type[Executor]) -> None:
    """Register (or replace) an executor class under ``name``."""
    if not (isinstance(cls, type) and issubclass(cls, Executor)):
        raise TypeError(f"expected an Executor subclass, got {cls!r}")
    _REGISTRY[name] = cls


def available_executors() -> list[str]:
    """Sorted names accepted by :func:`get_executor` (and the CLI flag)."""
    return sorted(_REGISTRY) + ["auto"]


def resolve_workers(workers: int | None = None) -> int:
    """Explicit worker count, else the ``REPRO_WORKERS`` env var, else 1."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV, "").strip()
    return max(1, int(env)) if env else 1


def get_executor(name: "str | Executor | None" = None,
                 workers: int | None = None) -> Executor:
    """Build an executor by name with ``workers`` parallel workers.

    ``None`` defaults to ``"auto"``; ``"auto"`` defers to the
    ``REPRO_EXECUTOR`` env var when set, else picks serial for one worker
    and the process pool otherwise — so the environment can steer every
    default-configured run (the CI determinism leg) without touching
    explicit choices.  An already-built :class:`Executor` passes through
    unchanged so plumbing layers accept either form.
    """
    if isinstance(name, Executor):
        return name
    if name is None:
        name = DEFAULT_EXECUTOR
    workers = resolve_workers(workers)
    if name == "auto":
        env = os.environ.get(EXECUTOR_ENV, "").strip()
        if env and env != "auto":
            name = env
        else:
            name = "serial" if workers <= 1 else PARALLEL_DEFAULT
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown executor {name!r}; available: "
                       f"{', '.join(available_executors())}") from None
    return cls(workers)


register_executor("serial", SerialExecutor)
register_executor("thread", ThreadExecutor)
register_executor("process", ProcessExecutor)
