"""Shared-memory executors with deterministic ordered reduction.

The mpisim layer models *what a distributed run would cost*; this module
makes the simulated ranks' local work *actually run in parallel* on the
host's cores.  Every hot loop in the pipeline — SUMMA block multiplies,
candidate-pair x-drop alignments, per-rank k-mer hashing — is a list of
independent tasks, and an :class:`Executor` maps a function over such a
list:

* :class:`SerialExecutor` — the deterministic reference (and default): a
  plain in-order loop with zero overhead.
* :class:`ThreadExecutor` — a ``concurrent.futures`` thread pool; wins when
  the tasks spend their time in numpy/scipy kernels that release the GIL.
* :class:`ProcessExecutor` — a fork-safe process pool for pure-Python-heavy
  tasks (the x-drop loop); chunks are pickled to workers, results shipped
  back.

All three share one contract, which is what makes ``--workers`` a pure
performance axis:

1. tasks are batched into weight-balanced **contiguous** chunks
   (:func:`~repro.exec.partition.weighted_chunks`), and
2. per-task results are concatenated back in task-list order — an ordered,
   deterministic reduction.

Because each task is independent and the reduction never reorders, the
result list is byte-identical across executors and worker counts; only
wall-clock changes.  Per-task CPU time is measured inside the worker and
returned alongside each result so callers can keep charging compute to the
owning simulated rank (:class:`~repro.mpisim.tracker.StageTimer`'s
critical-path max semantics survive parallel execution).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable

from .partition import weighted_chunks

__all__ = [
    "Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor",
    "get_executor", "register_executor", "available_executors",
    "resolve_workers", "SERIAL", "DEFAULT_EXECUTOR", "WORKERS_ENV",
    "EXECUTOR_ENV",
]

#: Name resolved by ``get_executor("auto", workers)`` when ``workers > 1``.
PARALLEL_DEFAULT = "process"

#: Name resolved by ``get_executor(None)`` (before env overrides).
DEFAULT_EXECUTOR = "auto"

#: Environment variables consulted by :func:`resolve_workers` /
#: :func:`get_executor` when the caller passes ``None``.
WORKERS_ENV = "REPRO_WORKERS"
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Chunks submitted per worker — enough slack for uneven chunks to
#: rebalance across the pool without drowning in submission overhead
#: (each chunk re-pickles the shared context for a process pool, so this
#: also bounds how many times a big context crosses the pipe per call).
_CHUNKS_PER_WORKER = 2

TaskFn = Callable[[Any, Any], Any]


def _run_chunk(fn: TaskFn, context: Any, tasks: list) -> list[tuple[Any, float]]:
    """Run one chunk in-order, timing each task (executes in the worker).

    Tasks are timed with per-thread CPU time, not wall-clock: under a
    thread pool a wall-clock span would include every co-scheduled
    thread's execution (GIL hand-offs), inflating the compute charged to
    each simulated rank roughly workers-fold.  CPU time attributes to a
    rank only the cycles its own task burned, so
    :class:`~repro.mpisim.tracker.StageTimer` breakdowns stay comparable
    across executors (for the compute-bound kernels here, serial CPU time
    ≈ serial wall time).
    """
    out = []
    for task in tasks:
        t0 = time.thread_time()
        res = fn(context, task)
        out.append((res, time.thread_time() - t0))
    return out


class Executor:
    """Maps ``fn(context, task)`` over task lists with ordered reduction.

    ``context`` is shared, read-only state delivered once per chunk (for
    process pools it is pickled per chunk, not per task — pass the big
    immutable stuff like the read set here).  ``weights`` are per-task cost
    estimates (nonzero counts, read lengths) driving chunk balance; results
    never depend on them.
    """

    #: Registry name; set by subclasses.
    name: str = "abstract"

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))

    def run_timed(self, fn: TaskFn, tasks: list, *, context: Any = None,
                  weights=None) -> tuple[list, list[float]]:
        """Ordered results plus per-task wall seconds (measured in-worker)."""
        raise NotImplementedError

    def run(self, fn: TaskFn, tasks: list, *, context: Any = None,
            weights=None) -> list:
        """Ordered results (timing discarded)."""
        return self.run_timed(fn, tasks, context=context, weights=weights)[0]

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Release pool resources; the executor may not be reused after."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} workers={self.workers}>"


class SerialExecutor(Executor):
    """In-order single-thread execution — the determinism reference."""

    name = "serial"

    def run_timed(self, fn, tasks, *, context=None, weights=None):
        pairs = _run_chunk(fn, context, list(tasks))
        return [r for r, _ in pairs], [s for _, s in pairs]


class _PoolExecutor(Executor):
    """Shared chunk-submit / ordered-gather logic for the two pool kinds."""

    def _pool(self):
        raise NotImplementedError

    def run_timed(self, fn, tasks, *, context=None, weights=None):
        tasks = list(tasks)
        if self.workers <= 1 or len(tasks) <= 1:
            pairs = _run_chunk(fn, context, tasks)
            return [r for r, _ in pairs], [s for _, s in pairs]
        if weights is None:
            weights = [1.0] * len(tasks)
        ranges = weighted_chunks(weights, self.workers * _CHUNKS_PER_WORKER)
        pool = self._pool()
        futures: list[Future] = [
            pool.submit(_run_chunk, fn, context, tasks[lo:hi])
            for lo, hi in ranges]
        results: list = []
        seconds: list[float] = []
        # Gather in submission order = task order: the ordered reduction.
        for fut in futures:
            for res, sec in fut.result():
                results.append(res)
                seconds.append(sec)
        return results, seconds


class ThreadExecutor(_PoolExecutor):
    """Thread-pool executor; shines on GIL-releasing numpy/scipy kernels."""

    name = "thread"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._threads: ThreadPoolExecutor | None = None

    def _pool(self) -> ThreadPoolExecutor:
        if self._threads is None:
            self._threads = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec")
        return self._threads

    def close(self) -> None:
        if self._threads is not None:
            self._threads.shutdown(wait=True)
            self._threads = None


class ProcessExecutor(_PoolExecutor):
    """Process-pool executor for pure-Python-bound task loops.

    Uses the ``fork`` start method where the platform offers it (cheap
    worker startup, parent globals inherited) and falls back to ``spawn``
    elsewhere; either way task functions and payloads must be picklable —
    which is why the pipeline's task functions are module-level and carry
    their state via ``context``.  The pool is created lazily on first use
    and reused across calls, so per-stage dispatch costs a round of chunk
    pickles, not a pool spin-up.
    """

    name = "process"

    def __init__(self, workers: int = 1) -> None:
        super().__init__(workers)
        self._procs: ProcessPoolExecutor | None = None

    def _pool(self) -> ProcessPoolExecutor:
        if self._procs is None:
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
            self._procs = ProcessPoolExecutor(max_workers=self.workers,
                                              mp_context=ctx)
        return self._procs

    def close(self) -> None:
        if self._procs is not None:
            self._procs.shutdown(wait=True)
            self._procs = None


#: Shared zero-state serial instance — the default for library call sites.
SERIAL = SerialExecutor()

_REGISTRY: dict[str, type[Executor]] = {}


def register_executor(name: str, cls: type[Executor]) -> None:
    """Register (or replace) an executor class under ``name``."""
    if not (isinstance(cls, type) and issubclass(cls, Executor)):
        raise TypeError(f"expected an Executor subclass, got {cls!r}")
    _REGISTRY[name] = cls


def available_executors() -> list[str]:
    """Sorted names accepted by :func:`get_executor` (and the CLI flag)."""
    return sorted(_REGISTRY) + ["auto"]


def resolve_workers(workers: int | None = None) -> int:
    """Explicit worker count, else the ``REPRO_WORKERS`` env var, else 1."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get(WORKERS_ENV, "").strip()
    return max(1, int(env)) if env else 1


def get_executor(name: "str | Executor | None" = None,
                 workers: int | None = None) -> Executor:
    """Build an executor by name with ``workers`` parallel workers.

    ``None`` defaults to ``"auto"``; ``"auto"`` defers to the
    ``REPRO_EXECUTOR`` env var when set, else picks serial for one worker
    and the process pool otherwise — so the environment can steer every
    default-configured run (the CI determinism leg) without touching
    explicit choices.  An already-built :class:`Executor` passes through
    unchanged so plumbing layers accept either form.
    """
    if isinstance(name, Executor):
        return name
    if name is None:
        name = DEFAULT_EXECUTOR
    workers = resolve_workers(workers)
    if name == "auto":
        env = os.environ.get(EXECUTOR_ENV, "").strip()
        if env and env != "auto":
            name = env
        else:
            name = "serial" if workers <= 1 else PARALLEL_DEFAULT
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown executor {name!r}; available: "
                       f"{', '.join(available_executors())}") from None
    return cls(workers)


register_executor("serial", SerialExecutor)
register_executor("thread", ThreadExecutor)
register_executor("process", ProcessExecutor)
