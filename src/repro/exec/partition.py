"""Weight-balanced work partitioning for the executor layer.

The pipeline's parallel loops are lists of independent tasks with wildly
uneven costs (a SUMMA block multiply is as expensive as its operands have
nonzeros; an alignment as its reads are long).  Shipping one task at a time
to a worker pool would drown the useful work in submission and pickling
overhead, so the executors batch tasks into *chunks* — contiguous slices of
the task list whose summed weight is as even as possible.

Chunks are contiguous on purpose: every executor concatenates per-task
results back in task-list order (the ordered reduction that makes results
byte-identical across worker counts), and contiguous chunks make that
reassembly a trivial ordered flatten with no permutation bookkeeping.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["weighted_chunks"]


def weighted_chunks(weights: Sequence[float] | np.ndarray,
                    n_chunks: int,
                    max_items: int | None = None) -> list[tuple[int, int]]:
    """Split ``range(len(weights))`` into contiguous weight-balanced ranges.

    Chunk boundaries are placed at the weight-prefix quantiles, so each
    chunk carries roughly ``total_weight / n_chunks`` — the nnz-weighted
    analogue of an even block split.  Zero-weight tasks are still assigned
    (every index appears in exactly one range); empty ranges are dropped,
    so without ``max_items`` at most ``n_chunks`` ranges come back.

    ``max_items`` additionally caps the *item count* of every range: a
    quantile range longer than the cap is subdivided into even sub-ranges.
    Weight balance bounds a chunk's cost; the item cap bounds its working
    set — what the batched alignment engine needs to keep one kernel
    call's state in bounded memory regardless of how many cheap pairs the
    weight quantiles pack together.

    Returns a list of half-open ``(lo, hi)`` index ranges in ascending
    order whose concatenation is exactly ``range(len(weights))``.
    """
    w = np.asarray(weights, dtype=np.float64)
    n = w.shape[0]
    if n == 0:
        return []
    if (w < 0).any():
        raise ValueError("weights must be non-negative")
    if n_chunks <= 1 or n == 1:
        bounds = np.array([0, n], dtype=np.int64)
    else:
        n_chunks = min(n_chunks, n)
        prefix = np.cumsum(w)
        total = prefix[-1]
        if total <= 0.0:
            # All-zero weights: fall back to an even count split.
            bounds = (np.arange(n_chunks + 1, dtype=np.int64) * n) // n_chunks
        else:
            targets = (np.arange(1, n_chunks, dtype=np.float64) *
                       (total / n_chunks))
            cuts = np.searchsorted(prefix, targets, side="left") + 1
            bounds = np.concatenate(([0], cuts, [n]))
            bounds = np.maximum.accumulate(np.minimum(bounds, n))
    ranges = [(int(lo), int(hi))
              for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]
    if max_items is None:
        return ranges
    if max_items < 1:
        raise ValueError(f"max_items must be >= 1, got {max_items}")
    capped: list[tuple[int, int]] = []
    for lo, hi in ranges:
        n_sub = -(-(hi - lo) // max_items)
        if n_sub <= 1:
            capped.append((lo, hi))
            continue
        sub = lo + (np.arange(n_sub + 1, dtype=np.int64) * (hi - lo)) // n_sub
        capped.extend((int(a), int(b)) for a, b in zip(sub[:-1], sub[1:]))
    return capped
