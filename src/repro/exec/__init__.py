"""repro.exec — shared-memory parallel execution for the rank loops.

The simulated runtime (:mod:`repro.mpisim`) charges every rank's compute to
a critical-path timer but executes it in one sequential loop; this package
supplies the executors that spread those independent per-rank / per-block /
per-pair tasks over real cores, with an ordered deterministic reduction so
pipeline output is byte-identical for every executor and worker count.

See :mod:`repro.exec.executor` for the contract and
:mod:`repro.exec.partition` for the weight-balanced chunking.
"""

from .executor import (Executor, ProcessExecutor, SerialExecutor, SERIAL,
                       ThreadExecutor, available_executors, get_executor,
                       register_executor, resolve_workers)
from .partition import weighted_chunks

__all__ = [
    "Executor", "SerialExecutor", "ThreadExecutor", "ProcessExecutor",
    "SERIAL", "get_executor", "register_executor", "available_executors",
    "resolve_workers", "weighted_chunks",
]
