#!/usr/bin/env python
"""Strong-scaling study on the simulated runtime (the Fig. 4 workflow).

Runs the pipeline at increasing process-grid sizes on one dataset and prints
the modeled runtimes, parallel efficiencies, and the measured per-rank
communication volumes that drive them — the workflow behind the paper's
Fig. 4 and Table I, at laptop scale.

Usage::

    python examples/scaling_study.py [preset] [P1,P2,...]

e.g. ``python examples/scaling_study.py ecoli_like 1,4,16``.
"""

import sys

from repro import CORI_HASWELL, SUMMIT_CPU, PipelineConfig, run_pipeline
from repro.eval import load_preset, parallel_efficiency


def main(argv: list[str]) -> None:
    preset_name = argv[1] if len(argv) > 1 else "toy"
    procs = ([int(x) for x in argv[2].split(",")] if len(argv) > 2
             else [1, 4, 16])

    preset, _genome, reads, _layout = load_preset(preset_name)
    print(f"Dataset {preset.name}: {len(reads)} reads, depth {preset.depth}")

    results = []
    for P in procs:
        cfg = PipelineConfig(k=17, nprocs=P, align_mode="chain",
                             depth_hint=preset.depth,
                             error_hint=preset.error_rate)
        results.append(run_pipeline(reads, cfg))
        print(f"  ran P={P}")

    for machine in (CORI_HASWELL, SUMMIT_CPU):
        times = [r.modeled_total(machine) for r in results]
        effs = parallel_efficiency(procs, times)
        print(f"\n{machine.name}:")
        print(f"  {'P':>4s} {'seconds':>10s} {'efficiency':>10s}")
        for P, t, e in zip(procs, times, effs):
            print(f"  {P:4d} {t:10.3f} {e:10.2%}")

    print("\nMeasured per-rank communication (words, largest P):")
    last = results[-1]
    for stage in ("CountKmer", "SpGEMM", "ExchangeRead", "TrReduction"):
        w = last.tracker.words(stage)
        y = last.tracker.messages(stage)
        print(f"  {stage:13s} W = {w:12.0f} words   Y = {y:6.0f} messages")


if __name__ == "__main__":
    main(sys.argv)
