#!/usr/bin/env python
"""Strong-scaling study on the simulated runtime (the Fig. 4 workflow).

Runs the pipeline at increasing process-grid sizes on one dataset and prints
the modeled runtimes, parallel efficiencies, and the measured per-rank
communication volumes that drive them — the workflow behind the paper's
Fig. 4 and Table I, at laptop scale.

Usage::

    python examples/scaling_study.py [preset] [P1,P2,...] [--workers N]

e.g. ``python examples/scaling_study.py ecoli_like 1,4,16 --workers 4``.
The modeled times study the *simulated* machine scaling; ``--workers``
additionally spreads each run's real compute over host cores (identical
results, measured wall-clock printed per run).
"""

import argparse
import sys
import time

from repro import CORI_HASWELL, SUMMIT_CPU, PipelineConfig, run_pipeline
from repro.eval import load_preset, parallel_efficiency
from repro.seqs.kmer_counter import KMER_IMPLS


def main(argv: list[str]) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("preset", nargs="?", default="toy")
    ap.add_argument("procs", nargs="?", default="1,4,16",
                    help="comma-separated simulated process counts")
    ap.add_argument("--workers", type=int, default=None,
                    help="real parallel workers (default: REPRO_WORKERS)")
    ap.add_argument("--align-mode", choices=("xdrop", "chain"),
                    default="chain",
                    help="'xdrop' runs real banded alignments per candidate "
                         "pair via the batched engine")
    ap.add_argument("--kmer-impl", choices=("auto",) + KMER_IMPLS,
                    default="auto",
                    help="k-mer engine (identical output; 'batch' is the "
                         "vectorized SoA fast path)")
    args = ap.parse_args(argv[1:])
    workers = args.workers
    preset_name = args.preset
    procs = [int(x) for x in args.procs.split(",")]

    preset, _genome, reads, _layout = load_preset(preset_name)
    print(f"Dataset {preset.name}: {len(reads)} reads, depth {preset.depth}")

    results = []
    for P in procs:
        cfg = PipelineConfig(k=17, nprocs=P, align_mode=args.align_mode,
                             kmer_impl=args.kmer_impl,
                             depth_hint=preset.depth,
                             error_hint=preset.error_rate,
                             workers=workers)
        t0 = time.perf_counter()
        results.append(run_pipeline(reads, cfg))
        print(f"  ran P={P} (wall {time.perf_counter() - t0:.2f} s, "
              f"workers={workers or 'env/1'})")

    for machine in (CORI_HASWELL, SUMMIT_CPU):
        times = [r.modeled_total(machine) for r in results]
        effs = parallel_efficiency(procs, times)
        print(f"\n{machine.name}:")
        print(f"  {'P':>4s} {'seconds':>10s} {'efficiency':>10s}")
        for P, t, e in zip(procs, times, effs):
            print(f"  {P:4d} {t:10.3f} {e:10.2%}")

    print("\nMeasured per-rank communication (words, largest P):")
    last = results[-1]
    for stage in ("CountKmer", "SpGEMM", "ExchangeRead", "TrReduction"):
        w = last.tracker.words(stage)
        y = last.tracker.messages(stage)
        print(f"  {stage:13s} W = {w:12.0f} words   Y = {y:6.0f} messages")


if __name__ == "__main__":
    main(sys.argv)
