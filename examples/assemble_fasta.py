#!/usr/bin/env python
"""Assemble a FASTA file end to end (layout stage) and write contigs.

Demonstrates the file-based workflow a downstream user would run: reads come
from a FASTA file (here generated on the fly unless one is supplied), the
pipeline builds the string graph, and the contigs — ordered, oriented read
walks — are written to a tab-separated layout file, the same information an
OLC assembler hands to its consensus stage.

Usage::

    python examples/assemble_fasta.py [reads.fa] [out_layout.tsv]
"""

import sys
import tempfile
from pathlib import Path

from repro import PipelineConfig, extract_contigs, run_pipeline_from_fasta
from repro.seqs import (ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads,
                        write_fasta)


def _make_demo_fasta(path: Path) -> None:
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(
            genome=GenomeSpec(length=40_000, n_repeats=2, repeat_len=1_500,
                              seed=7),
            depth=18, mean_len=1_000, min_len=400,
            error=ErrorModel(rate=0.06), seed=8))
    write_fasta(path, reads)
    print(f"Wrote demo read set: {path} ({len(reads)} reads)")


def main(argv: list[str]) -> None:
    if len(argv) > 1:
        fasta = Path(argv[1])
        if not fasta.exists():
            _make_demo_fasta(fasta)
    else:
        fasta = Path(tempfile.gettempdir()) / "repro_demo_reads.fa"
        _make_demo_fasta(fasta)
    out = Path(argv[2]) if len(argv) > 2 else Path("layout.tsv")

    config = PipelineConfig(k=17, nprocs=4, align_mode="chain",
                            depth_hint=18, error_hint=0.06)
    result = run_pipeline_from_fasta(fasta, config)
    print(f"String graph: {result.nnz_s} entries over {result.n_reads} reads "
          f"({result.tr_rounds} reduction rounds)")

    contigs = extract_contigs(result.string_graph)
    contigs.sort(key=len, reverse=True)
    with open(out, "w") as fh:
        fh.write("contig\tposition\tread\torientation\n")
        for cid, contig in enumerate(contigs):
            for t, (rid, orient) in enumerate(zip(contig.reads,
                                                  contig.orientations)):
                fh.write(f"contig{cid}\t{t}\t{rid}\t{'-' if orient else '+'}\n")
    multi = sum(1 for c in contigs if len(c) > 1)
    print(f"Wrote {out}: {len(contigs)} contigs ({multi} with >1 read, "
          f"largest {len(contigs[0])} reads)")


if __name__ == "__main__":
    main(sys.argv)
