#!/usr/bin/env python
"""Drive the incremental assembly service end to end over HTTP.

Starts the JSON server on a free port, streams a simulated read set in as
one bulk load plus a few delta batches (the serving pattern the service
is built for), and queries it between ingests: version, a read's
overlaps, the contig layout, and the stats endpoint's cache counters —
which show the second identical query hitting the version-keyed cache
and every ingest sweeping the stale entries.

Usage::

    python examples/service_demo.py
"""

import json
import threading
import urllib.request

import numpy as np

from repro.core.pipeline import PipelineConfig
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads
from repro.seqs.dna import decode
from repro.service import AssemblyService, ServiceConfig, make_server


def _get(url: str) -> dict:
    with urllib.request.urlopen(url) as resp:
        return json.loads(resp.read())


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(req) as resp:
        return json.loads(resp.read())


def main() -> None:
    _genome, reads, _layout = simulate_reads(
        ReadSimSpec(GenomeSpec(length=30_000, seed=11), depth=10,
                    mean_len=1_500, min_len=700,
                    error=ErrorModel(rate=0.0), seed=12))
    print(f"simulated {len(reads)} reads from a 30 kb genome")

    service = AssemblyService(ServiceConfig(
        refresh_mode="incremental",
        pipeline=PipelineConfig(k=17, nprocs=4)))
    server = make_server(service, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"serving on {base}\n")

    # One bulk load, then a stream of small delta batches.
    n = len(reads)
    splits = [0, int(0.7 * n), int(0.8 * n), int(0.9 * n), n]
    for lo, hi in zip(splits[:-1], splits[1:]):
        sub = reads.subset(np.arange(lo, hi))
        reply = _post(f"{base}/reads", {"reads": [
            {"name": name, "seq": decode(seq)}
            for name, seq in zip(sub.names, sub.seqs)]})
        c = reply["counts"]
        print(f"v{reply['version']}: +{reply['ingested']} reads via "
              f"{reply['refresh_mode']} in {reply['refresh_seconds']:.2f}s "
              f"-> {c['n_reads']} reads, nnz(R)={c['nnz_r']}, "
              f"{len(_get(f'{base}/contigs')['contigs'])} contigs")

    print()
    contigs = _get(f"{base}/contigs")["contigs"]
    print(f"largest contig spans {len(contigs[0]['reads'])} reads")

    probe = contigs[0]["reads"][1]  # an interior read has overlaps
    overlaps = _get(f"{base}/overlaps/{probe}")["overlaps"]
    print(f"read {probe} overlaps {len(overlaps)} reads; first: "
          f"{overlaps[0] if overlaps else None}")

    _get(f"{base}/contigs")  # identical query: served from the cache
    stats = _get(f"{base}/stats")
    print(f"comm totals: "
          f"{ {s: v['bytes'] for s, v in stats['comm'].items()} }")
    print(f"cache counters after a repeat query: {stats['cache']}")

    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
