#!/usr/bin/env python
"""Quickstart: simulate reads, run diBELLA 2D, inspect the string graph.

Runs the full pipeline — k-mer counting, sparse overlap detection
(C = A·Aᵀ), x-drop alignment, and distributed transitive reduction — on a
small simulated PacBio-CLR-like read set, then prints the matrix
statistics, the stage breakdown, and the resulting contigs.

Usage::

    python examples/quickstart.py [--workers N] [--executor NAME]
    python examples/quickstart.py --seed-mode minimizer

``--workers 4`` runs the same pipeline with the per-rank compute spread
over 4 real workers (identical output, lower wall-clock; see repro.exec).
``--seed-mode minimizer`` seeds overlaps from a (w,k)-minimizer sketch
instead of every k-mer window — ~4.5x smaller A at w=8 with a
near-identical overlap graph (see the "Pluggable seeding layer" README
section).
"""

import argparse
import time

from repro import CORI_HASWELL, PipelineConfig, extract_contigs, run_pipeline
from repro.align.batch import ALIGN_IMPLS
from repro.core.memory import OVERLAP_MODES, format_bytes, parse_bytes
from repro.exec import available_executors
from repro.seqs.kmer_counter import KMER_IMPLS
from repro.seqs.seeding import DEFAULT_SEED_W, SEED_MODES
from repro.seqs import ErrorModel, GenomeSpec, ReadSimSpec, simulate_reads


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workers", type=int, default=None,
                    help="parallel workers (default: REPRO_WORKERS, else 1)")
    ap.add_argument("--executor", choices=available_executors(),
                    default="auto")
    ap.add_argument("--overlap-mode", choices=("auto",) + OVERLAP_MODES,
                    default="auto",
                    help="'blocked' strip-mines the candidate matrix for a "
                         "~n_strips-fold lower memory peak, same output")
    ap.add_argument("--memory-budget", type=parse_bytes, default=None,
                    metavar="BYTES",
                    help="candidate-matrix byte budget (e.g. 64M); implies "
                         "strip scheduling in blocked mode")
    ap.add_argument("--align-mode", choices=("xdrop", "chain"),
                    default="chain",
                    help="'chain' (default here, for a fast demo) is the "
                         "alignment-free estimate; 'xdrop' runs real banded "
                         "alignments — affordable via the batched engine")
    ap.add_argument("--align-impl", choices=("auto",) + ALIGN_IMPLS,
                    default="auto",
                    help="alignment engine: 'batch' sweeps whole chunks of "
                         "candidate pairs per kernel call, 'loop' is the "
                         "per-pair reference — identical output")
    ap.add_argument("--kmer-impl", choices=("auto",) + KMER_IMPLS,
                    default="auto",
                    help="k-mer engine: 'batch' counts through vectorized "
                         "sorted-array tables, 'loop' is the per-read / "
                         "per-key dict reference — identical output")
    ap.add_argument("--seed-mode", choices=("auto",) + SEED_MODES,
                    default="auto",
                    help="seeding scheme: 'full' seeds every k-mer window, "
                         "'minimizer'/'syncmer' sketch ~1/w of them — "
                         "smaller A and C, near-identical overlap graph")
    ap.add_argument("--seed-w", type=int, default=DEFAULT_SEED_W,
                    help="sketch window (k-mers per minimizer window / "
                         "syncmer density 1/w)")
    args = ap.parse_args()
    # 1. Simulate a 30 kb genome at 15x depth with 5% CLR-style errors.
    genome, reads, layout = simulate_reads(
        ReadSimSpec(
            genome=GenomeSpec(length=30_000, seed=42),
            depth=15, mean_len=900, min_len=400,
            error=ErrorModel(rate=0.05), seed=1))
    print(f"Simulated {len(reads)} reads / {reads.total_bases():,} bases "
          f"over a {genome.shape[0]:,} bp genome")

    # 2. Run the pipeline on a 2x2 simulated process grid.  --align-mode
    #    xdrop runs real banded alignments (the batched engine extends all
    #    candidate pairs in lockstep kernel sweeps, ~an order of magnitude
    #    faster than per-pair dispatch); --workers spreads the per-rank
    #    compute over real cores (same output, smaller wall-clock).
    config = PipelineConfig(k=17, nprocs=4, align_mode=args.align_mode,
                            align_impl=args.align_impl,
                            kmer_impl=args.kmer_impl,
                            depth_hint=15, error_hint=0.05,
                            workers=args.workers, executor=args.executor,
                            overlap_mode=args.overlap_mode,
                            memory_budget=args.memory_budget,
                            seed_mode=args.seed_mode, seed_w=args.seed_w)
    t0 = time.perf_counter()
    result = run_pipeline(reads, config)
    wall = time.perf_counter() - t0
    print(f"Pipeline wall-clock: {wall:.2f} s "
          f"(executor={config.executor}, workers={args.workers or 'env/1'}, "
          f"align={config.align_mode}/{result.align_impl}, "
          f"kmer={result.kmer_impl}, seed={result.seed_mode})")
    if result.seed_mode != "full":
        print(f"Sketched seeding: {result.seed_mode} (w={args.seed_w}) — "
              f"nnz(A) = {result.nnz_a:,} vs ~every-window full-k")
    if result.overlap_mode == "blocked":
        print(f"Blocked overlap mode: {result.n_strips} strips, peak "
              f"candidate memory "
              f"{format_bytes(result.peak_candidate_bytes)}")

    # 3. Matrix statistics (the quantities of the paper's Tables II-III).
    print(f"\nReliable k-mers: {result.n_kmers:,}")
    print(f"Candidate pairs nnz(C): {result.nnz_c:,} "
          f"(c = {result.c_density:.1f} per read)")
    print(f"Overlap entries nnz(R): {result.nnz_r:,} "
          f"(r = {result.r_density:.1f})")
    print(f"String graph nnz(S):   {result.nnz_s:,} "
          f"(s = {result.s_density:.1f}) "
          f"after {result.tr_rounds} reduction rounds")

    # 4. Stage breakdown: measured compute + modeled communication on the
    #    Cori Haswell machine model.
    print("\nModeled stage times (Cori Haswell):")
    for stage, secs in result.modeled_time(CORI_HASWELL).items():
        print(f"  {stage:13s} {secs * 1e3:8.1f} ms")

    # 5. Walk the string graph into contigs.
    contigs = extract_contigs(result.string_graph)
    big = sorted((len(c) for c in contigs), reverse=True)[:5]
    print(f"\nContigs: {len(contigs)} (largest by read count: {big})")


if __name__ == "__main__":
    main()
