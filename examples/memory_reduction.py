#!/usr/bin/env python
"""Memory-budget blocked pipeline mode (the paper's Section VIII plan).

The candidate matrix ``C = A·Aᵀ`` is the pipeline's memory high-water mark:
at low concurrency a large genome may not fit it.  With
``overlap_mode="blocked"`` the pipeline forms C in column strips — aligning
and pruning each strip before the next one exists — so the peak drops
~``n_strips``-fold while the string matrix S stays byte-identical.

This example runs the same read set through the monolithic path and through
blocked mode at several strip counts (plus a byte-budget-driven run where
the scheduler picks the count from the measured ``nnz(A)`` and the BELLA
density model), and prints the recorded candidate-memory high-water marks.

Usage::

    python examples/memory_reduction.py [--memory-budget 256K]
"""

import argparse

import numpy as np

from repro import PipelineConfig, run_pipeline
from repro.core.memory import format_bytes, parse_bytes
from repro.eval import load_preset


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--memory-budget", type=parse_bytes, default="128K",
                    metavar="BYTES",
                    help="candidate-matrix byte budget for the scheduler-"
                         "driven run (e.g. 64K, 2M; default 128K)")
    args = ap.parse_args()

    preset, _genome, reads, _layout = load_preset("toy")

    def config(**kw) -> PipelineConfig:
        return PipelineConfig(k=17, nprocs=4, align_mode="chain",
                              depth_hint=preset.depth,
                              error_hint=preset.error_rate, **kw)

    ref = run_pipeline(reads, config(overlap_mode="monolithic"))
    print(f"{len(reads)} reads, {ref.n_kmers:,} reliable k-mers, "
          f"nnz(C) = {ref.nnz_c:,}\n")
    print(f"{'mode':>18s} {'strips':>6s} {'peak C bytes':>13s} "
          f"{'of monolithic':>13s} {'S entries':>10s} {'identical':>9s}")
    mono_peak = ref.peak_candidate_bytes
    print(f"{'monolithic':>18s} {'-':>6s} {format_bytes(mono_peak):>13s} "
          f"{'100.0%':>13s} {ref.nnz_s:10,d} {'(ref)':>9s}")

    runs = [(f"blocked", dict(overlap_mode="blocked", n_strips=s))
            for s in (2, 4, 8, 16)]
    runs.append(("budget " + format_bytes(args.memory_budget),
                 dict(overlap_mode="blocked",
                      memory_budget=args.memory_budget)))
    for label, kw in runs:
        res = run_pipeline(reads, config(**kw))
        identical = (np.array_equal(res.S.row, ref.S.row) and
                     np.array_equal(res.S.col, ref.S.col) and
                     np.array_equal(res.S.vals, ref.S.vals))
        assert identical, "blocked mode must not change the result"
        peak = res.peak_candidate_bytes
        print(f"{label:>18s} {res.n_strips:6d} {format_bytes(peak):>13s} "
              f"{peak / max(1, mono_peak):13.1%} {res.nnz_s:10,d} "
              f"{'yes':>9s}")

    print("\nS is byte-identical in every run; the candidate-memory "
          "high-water mark scales down with the strip count "
          "(Section VIII's proposal, now a first-class pipeline mode).")


if __name__ == "__main__":
    main()
