#!/usr/bin/env python
"""Strip-mined overlap detection (the paper's Section VIII future work).

Demonstrates forming the candidate matrix C in column strips — aligning and
pruning each strip before moving to the next — so the peak number of live
candidate entries (the memory high-water mark that limits low-concurrency
runs of large genomes) drops with the strip count while the final overlap
matrix stays bit-identical.

Usage::

    python examples/memory_reduction.py
"""

from repro.core.blocked import candidate_overlaps_blocked
from repro.core.overlap import build_a_matrix
from repro.core.string_graph import StringGraph
from repro.core.transitive_reduction import transitive_reduction
from repro.eval import load_preset
from repro.mpisim import CommTracker, ProcessGrid2D, SimComm, StageTimer
from repro.seqs.kmer_counter import count_kmers, reliable_upper_bound


def main() -> None:
    preset, _genome, reads, _layout = load_preset("toy")
    P = 4
    comm = SimComm(P, CommTracker(P))
    timer = StageTimer()
    upper = reliable_upper_bound(preset.depth, preset.error_rate, 17)
    table = count_kmers(reads, 17, comm, timer, upper=upper)
    A = build_a_matrix(reads, table, ProcessGrid2D(P), comm, timer)
    print(f"{len(reads)} reads, {len(table):,} reliable k-mers, "
          f"nnz(A) = {A.nnz():,}\n")

    print(f"{'strips':>6s} {'peak C entries':>15s} {'of total':>9s} "
          f"{'R entries':>10s} {'S entries':>10s}")
    reference = None
    for strips in (1, 2, 4, 8, 16):
        res = candidate_overlaps_blocked(A, reads, 17, comm, strips, timer,
                                         mode="chain")
        tr = transitive_reduction(res.R.copy(), comm, timer, fuzz=150)
        frac = res.peak_strip_nnz / max(1, res.nnz_c)
        print(f"{strips:6d} {res.peak_strip_nnz:15,d} {frac:9.1%} "
              f"{res.R.nnz():10,d} {tr.S.nnz():10,d}")
        edges = StringGraph.from_coomat(res.R.to_global()).edge_set()
        if reference is None:
            reference = edges
        assert edges == reference, "strip count must not change the result"
    print("\nR identical for every strip count; peak memory scales down "
          "with strips (Section VIII's proposal).")


if __name__ == "__main__":
    main()
