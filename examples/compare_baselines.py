#!/usr/bin/env python
"""Compare diBELLA 2D against every baseline on one dataset.

Reproduces, at small scale, all three comparisons of the paper's Section
VII-B on a single simulated read set:

* overlap detection: diBELLA 2D vs diBELLA 1D (Fig. 9) vs minimap2-like;
* transitive reduction: diBELLA 2D vs SORA (Table VI) vs Myers sequential;
* and cross-checks that all three reduction implementations agree.

Usage::

    python examples/compare_baselines.py
"""

from repro import PipelineConfig, SUMMIT_CPU, run_pipeline
from repro.baselines import (myers_transitive_reduction, run_dibella1d,
                             run_minimap_like, sora_transitive_reduction)
from repro.core.string_graph import StringGraph
from repro.eval import load_preset, overlap_recall_precision


def main() -> None:
    preset, _genome, reads, layout = load_preset("toy")
    P = 4
    print(f"Dataset: {len(reads)} reads, depth {preset.depth}\n")

    # --- overlap detection ------------------------------------------------
    res2d = run_pipeline(reads, PipelineConfig(
        k=17, nprocs=P, align_mode="chain", depth_hint=preset.depth,
        error_hint=preset.error_rate))
    res1d = run_dibella1d(reads, k=17, nprocs=P, align_mode="chain",
                          depth_hint=preset.depth,
                          error_hint=preset.error_rate)
    mm = run_minimap_like(reads)

    t2d = res2d.modeled_total(SUMMIT_CPU) - res2d.modeled_time(
        SUMMIT_CPU).get("TrReduction", 0.0)
    t1d = res1d.modeled_total(SUMMIT_CPU)
    print("Overlap detection (modeled on Summit CPU):")
    print(f"  diBELLA 2D   {t2d:8.3f} s   ({res2d.nnz_c} candidate pairs)")
    print(f"  diBELLA 1D   {t1d:8.3f} s   ({res1d.n_candidate_pairs} pairs)"
          f"   -> 2D speedup {t1d / t2d:.2f}x")
    print(f"  minimap-like {mm.modeled_threads_time(32):8.3f} s "
          f"(1 node, 32 threads, {mm.n_pairs} pairs)")
    r, p = overlap_recall_precision(mm.pairs, layout, min_overlap=500)
    print(f"  minimap-like recall/precision vs truth: {r:.2f}/{p:.2f}")

    # --- transitive reduction ------------------------------------------------
    from repro.eval.experiments import _overlap_graph_for, _CACHE
    from repro.core.transitive_reduction import transitive_reduction
    from repro.dsparse.distmat import DistMat
    from repro.mpisim import CommTracker, ProcessGrid2D, SimComm
    _CACHE.clear()
    _CACHE["toy"] = (preset, _genome, reads, layout)
    graph = _overlap_graph_for("toy")

    # All three reducers consume the *same* overlap graph.
    mat = graph.to_coomat()
    D = DistMat.from_coo(mat.shape, ProcessGrid2D(P), mat.row, mat.col,
                         mat.vals)
    comm = SimComm(P, CommTracker(P))
    tr = transitive_reduction(D, comm, fuzz=150)
    tr_time = (res2d.timer.stage_seconds.get("TrReduction", 0.0)
               * SUMMIT_CPU.compute_scale
               + comm.tracker.stage_comm_time("TrReduction", SUMMIT_CPU))
    sora = sora_transitive_reduction(graph, nodes=1, cores_per_node=32)
    myers = myers_transitive_reduction(graph, fuzz=150)

    print("\nTransitive reduction (same overlap graph, "
          f"{graph.n_edges} directed entries):")
    print(f"  diBELLA 2D   {tr_time:8.3f} s -> {tr.S.nnz()} entries")
    print(f"  SORA (model) {sora.modeled_seconds:8.3f} s -> "
          f"{sora.graph.n_edges} entries "
          f"({sora.modeled_seconds / max(tr_time, 1e-9):.0f}x slower)")
    print(f"  Myers (seq.)             -> {myers.n_edges} entries")
    print(f"  diBELLA == Myers: {tr.S.nnz() == myers.n_edges and True}")
    print(f"  SORA == Myers:    {sora.graph.edge_set() == myers.edge_set()}")


if __name__ == "__main__":
    main()
